// E2 — Figure 1(b) + Figure 3: adjacent surfaces and boundary construction.
// Regenerates: the six adjacent surfaces S0..S5 of the Figure 1 block, the
// boundary walls hanging from each surface's edges (Figure 3(a)-(c)), and
// the Figure 3(d) merge of block A's boundary into block B.

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/core/scenario.h"
#include "src/fault/boundary_model.h"
#include "src/fault/corner_taxonomy.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout, "E2 / Figure 1(b): the six adjacent surfaces of block [3:5,5:6,3:4]");

  Config cfg = experiment_config();
  cfg.parse_string("scenario=figure1");
  Rng rng(static_cast<uint64_t>(cfg.get_int("seed")));
  auto env = ExperimentRunner(cfg).build_static(rng);
  Network& net = *env.net;
  const Box block = figure1_block();
  const Topology& mesh = net.mesh();

  TablePrinter s({"surface", "plane", "nodes", "edge ring nodes", "wall nodes (measured)"});
  for (int dim = 0; dim < 3; ++dim) {
    for (bool positive : {false, true}) {
      const Surface surf{dim, positive};
      const auto face = surface_positions(mesh, block, surf);
      const auto ring = surface_edge_positions(mesh, block, surf.opposite());
      const auto wall = wall_positions_ignoring_merges(mesh, block, surf);
      long long held = 0;
      for (const auto& w : wall)
        if (net.model().info().holds(mesh.index_of(w), block)) ++held;
      const char axis = static_cast<char>('X' + dim);
      s.add_row({"S" + std::to_string(surf.paper_index(3)),
                 std::string(1, axis) + (positive ? " = hi+1" : " = lo-1"),
                 TablePrinter::num((long long)face.size()),
                 TablePrinter::num((long long)ring.size()),
                 TablePrinter::num(held) + "/" + TablePrinter::num((long long)wall.size())});
    }
  }
  s.print(std::cout);
  std::cout << "  (wall nodes hold the block info after distributed boundary construction)\n";

  print_banner(std::cout, "E2 / Figure 3(d): boundary of block A merging into block B (2-D)");
  const auto scenario = stacked_blocks_scenario();
  Config cfg2 = experiment_config();
  cfg2.parse_string("scenario=stacked_blocks");
  auto env2 = ExperimentRunner(cfg2).build_static(rng);
  Network& net2 = *env2.net;

  long long b_envelope_with_a = 0, b_envelope_total = 0, below_b_with_a = 0;
  for (const auto& c : envelope_positions(scenario.mesh, scenario.lower)) {
    ++b_envelope_total;
    if (net2.model().info().holds(scenario.mesh.index_of(c), scenario.upper))
      ++b_envelope_with_a;
  }
  for (const auto& c :
       wall_positions_ignoring_merges(scenario.mesh, scenario.lower, Surface{1, true})) {
    if (net2.model().info().holds(scenario.mesh.index_of(c), scenario.upper)) ++below_b_with_a;
  }

  TablePrinter m({"quantity", "measured", "expected"});
  m.add_row({"block A (upper)", scenario.upper.to_string(), "-"});
  m.add_row({"block B (lower)", scenario.lower.to_string(), "-"});
  m.add_row({"B-envelope nodes holding A's info",
             TablePrinter::num(b_envelope_with_a) + "/" + TablePrinter::num(b_envelope_total),
             "all of them (merge rule)"});
  m.add_row({"A's info on B's own S_{y,+} walls", TablePrinter::num(below_b_with_a),
             "> 0 (continues below B)"});
  m.print(std::cout);

  // Distributed placement must equal the centralized fixpoint.
  const auto placement = compute_information_placement(
      scenario.mesh, {scenario.upper, scenario.lower}, net2.model().epoch());
  long long mismatches = 0;
  for (NodeId id = 0; id < scenario.mesh.node_count(); ++id) {
    const auto got = net2.model().info().at(id);
    const auto want = placement.store.at(id);
    if (got.size() != want.size()) ++mismatches;
    else {
      for (const auto& w : want)
        if (!net2.model().info().holds(id, w.box)) ++mismatches;
    }
  }
  std::cout << "\n  distributed-vs-centralized placement mismatches: " << mismatches << "\n";

  const bool ok = b_envelope_with_a == b_envelope_total && below_b_with_a > 0 && mismatches == 0;
  std::cout << "  RESULT: " << (ok ? "reproduces Figure 3 boundaries + merge" : "MISMATCH")
            << "\n";
  return ok ? 0 : 1;
}
