// E15: wormhole vs ideal switching — the flit-level saturation matrix.
//
// One campaign over switching x router x fault count x injection rate: the
// three information placements the paper compares — fault_info
// (limited-global), global_table (instant global), no_info — under both
// switching models (DESIGN.md §10): `ideal` single-flit packets and
// `wormhole` flit-level packets with virtual channels and credit flow
// control.  This is the fidelity regime the paper's Figure-7 step model
// cannot see: blocked worms hold VCs across many hops, so fault detours
// cost channel *capacity*, not just path length.  The whole grid fans out
// over one thread pool (point x replication tasks, the CampaignRunner
// contract).
//
// Self-checks (exit non-zero on violation):
//   - every configuration delivers traffic, and accepted throughput never
//     exceeds the measured offered load;
//   - per delivered message, tail latency decomposes exactly into head
//     (path-setup) latency plus serialization, so the means add up;
//   - wormhole mean latency is >= ideal mean latency for every
//     (router, faults, rate) — flit serialization cannot be free;
//   - wormhole saturates at an injection rate no higher than ideal (per
//     router x faults; saturation = mean delivered fraction < 0.95), and
//     strictly lower for at least one configuration;
//   - under wormhole switching, fault_info mean latency <= no_info mean
//     latency (2% noise slack) at every tested (faults, rate) where both
//     run stably — limited-global information must not lose to blind
//     backtracking when worms hold channels.  Past the saturation knee the
//     mean covers only the surviving minority, so censored points are
//     excluded rather than asserted on.
//
// Any key=value argument overrides the base config (mesh size, steps,
// replications, seed, num_vcs, flits_per_packet, ...) and any sweep token
// (rates=a,b,c, switching=[...], router=[...], faults=[...]) replaces the
// corresponding default axis (smaller meshes saturate at higher per-node
// rates); a scalar for a swept key pins that axis to the one value.  CI
// smoke-runs this through scripts/traffic_smoke.sh:
//
//   ./bench_wormhole_saturation radix=6 warmup_steps=30 measure_steps=150 \
//       replications=2 rates=0.01,0.02,0.05,0.08

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "examples/cli_common.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

namespace {

struct Cell {
  double offered = 0.0;
  double throughput = 0.0;
  double latency = 0.0;
  double head_latency = 0.0;
  double serialization = 0.0;
  double delivered_frac = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  SweepSpec spec(experiment_config());
  Config& base = spec.base();
  base.set_str("traffic", "uniform");
  base.set_int("mesh_dims", 2);
  base.set_int("radix", 8);
  base.set_int("warmup_steps", 60);
  base.set_int("measure_steps", 300);
  base.set_int("routes", 0);
  base.set_int("faults", 0);
  // Clustered placement forms real multi-node blocks — the regime where
  // stored block information pays for itself; scattered single-node faults
  // barely detour anything and the router comparison would be noise.
  base.set_str("fault_model", "clustered");
  base.set_int("replications", 4);
  base.set_int("seed", 15);

  const int parsed = cli::parse_args(argc, argv, spec,
                                     {"bench_wormhole_saturation",
                                      "E15: switching x router x faults x injection-rate "
                                      "flit-level saturation matrix (self-checking)",
                                      "", ""});
  if (parsed >= 0) return parsed;

  spec.add_default_axis("switching", {"ideal", "wormhole"});
  spec.add_default_axis("router", {"fault_info", "global_table", "no_info"});
  spec.add_default_axis("faults", {"0", "8"});
  spec.add_default_axis("injection_rate", {"0.005", "0.01", "0.02", "0.05"});

  constexpr double kSaturatedBelow = 0.95;  // mean delivered fraction

  using Key = std::tuple<std::string, std::string, long long, double>;
  std::map<Key, Cell> cells;
  std::vector<std::string> switchings, routers;
  std::vector<long long> fault_counts;
  std::vector<double> rates;

  TablePrinter t({"switching", "router", "faults", "inj rate", "offered", "throughput",
                  "lat mean", "head lat", "serial lat", "delivered %"});
  bool ok = true;
  try {
    const CampaignRunner runner(spec);
    // The axis value lists (user-overridable) drive the cross-cell checks.
    for (const auto& axis : runner.campaign().axes) {
      if (axis.key == "switching") switchings = axis.values;
      if (axis.key == "router") routers = axis.values;
      if (axis.key == "faults")
        for (const auto& value : axis.values) fault_counts.push_back(std::stoll(value));
      if (axis.key == "injection_rate")
        for (const auto& value : axis.values) rates.push_back(std::stod(value));
    }

    const auto results = runner.run();
    for (const PointResult& point : results) {
      const Config& cfg = point.result.config;
      const std::string& switching = cfg.get_str("switching");
      const std::string& router = cfg.get_str("router");
      const long long faults = cfg.get_int("faults");
      const double rate = cfg.get_double("injection_rate");
      const MetricSet& m = point.result.metrics;
      Cell c;
      c.offered = m.mean("offered_load");
      c.throughput = m.mean("throughput");
      c.latency = m.mean("latency");
      c.head_latency = m.has("head_latency") ? m.mean("head_latency") : 0.0;
      c.serialization = m.has("serialization_latency") ? m.mean("serialization_latency") : 0.0;
      c.delivered_frac = m.mean("delivered_frac");
      cells[{switching, router, faults, rate}] = c;

      t.add_row({switching, router, TablePrinter::num(faults), TablePrinter::num(rate, 3),
                 TablePrinter::num(c.offered, 4), TablePrinter::num(c.throughput, 4),
                 TablePrinter::num(c.latency, 2), TablePrinter::num(c.head_latency, 2),
                 TablePrinter::num(c.serialization, 2),
                 TablePrinter::num(100.0 * c.delivered_frac, 1)});

      if (c.throughput <= 0.0) {
        std::cerr << "FAIL: " << switching << "/" << router << " faults=" << faults
                  << " rate=" << rate << " accepted no traffic\n";
        ok = false;
      }
      if (c.throughput > c.offered + 1e-9) {
        std::cerr << "FAIL: " << switching << "/" << router << " faults=" << faults
                  << " rate=" << rate << " accepted more than offered\n";
        ok = false;
      }
      if (switching == "wormhole" &&
          std::abs(c.latency - (c.head_latency + c.serialization)) > 1e-6) {
        std::cerr << "FAIL: " << router << " faults=" << faults << " rate=" << rate
                  << " latency " << c.latency << " != head " << c.head_latency
                  << " + serialization " << c.serialization << "\n";
        ok = false;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  t.print(std::cout);

  // The cross-model checks compare specific axis values; a user override
  // that drops one side of a comparison (switching=[wormhole],
  // router=[fault_info]) skips that check rather than comparing against
  // empty cells.
  const auto has = [](const std::vector<std::string>& v, const char* name) {
    return std::find(v.begin(), v.end(), name) != v.end();
  };
  const bool both_switchings = has(switchings, "ideal") && has(switchings, "wormhole");
  const bool info_vs_blind = has(switchings, "wormhole") && has(routers, "fault_info") &&
                             has(routers, "no_info");

  // Wormhole cannot beat the single-flit idealization on latency.  Skip
  // saturated wormhole points: past the knee the mean covers only the
  // short-path survivors and the censored mean can dip below ideal's
  // all-deliveries mean without anything being wrong.
  for (const auto& router : both_switchings ? routers : std::vector<std::string>{}) {
    for (const long long faults : fault_counts) {
      for (const double rate : rates) {
        const Cell& ideal = cells[{"ideal", router, faults, rate}];
        const Cell& worm = cells[{"wormhole", router, faults, rate}];
        if (worm.delivered_frac < kSaturatedBelow || ideal.delivered_frac < kSaturatedBelow)
          continue;
        if (worm.latency + 1e-9 < ideal.latency) {
          std::cerr << "FAIL: wormhole latency " << worm.latency << " below ideal "
                    << ideal.latency << " (" << router << " faults=" << faults
                    << " rate=" << rate << ")\n";
          ok = false;
        }
      }
    }
  }

  // Wormhole saturates first: per router x faults, the lowest rate whose
  // delivered fraction drops below the threshold must come no later than
  // ideal's, and strictly earlier somewhere in the matrix.
  bool strictly_earlier = false;
  for (const auto& router : both_switchings ? routers : std::vector<std::string>{}) {
    for (const long long faults : fault_counts) {
      const auto saturation_rate = [&](const std::string& switching) {
        for (const double rate : rates)
          if (cells[{switching, router, faults, rate}].delivered_frac < kSaturatedBelow)
            return rate;
        return std::numeric_limits<double>::infinity();
      };
      const double sat_ideal = saturation_rate("ideal");
      const double sat_worm = saturation_rate("wormhole");
      if (sat_worm > sat_ideal) {
        std::cerr << "FAIL: " << router << " faults=" << faults
                  << ": wormhole saturates at " << sat_worm << " after ideal at "
                  << sat_ideal << "\n";
        ok = false;
      }
      if (sat_worm < sat_ideal) strictly_earlier = true;
    }
  }
  if (both_switchings && !strictly_earlier) {
    std::cerr << "FAIL: no configuration where wormhole saturates strictly before ideal\n";
    ok = false;
  }

  // Limited-global information beats blind backtracking under wormhole
  // switching at every tested load point where the network is stable (both
  // configurations above the delivery threshold — past saturation the mean
  // is over the surviving minority and survivorship censoring dominates).
  // The 2% slack absorbs sampling noise of the per-seed block placements
  // without letting a real inversion through.
  for (const long long faults : info_vs_blind ? fault_counts : std::vector<long long>{}) {
    for (const double rate : rates) {
      const Cell& info = cells[{"wormhole", "fault_info", faults, rate}];
      const Cell& blind = cells[{"wormhole", "no_info", faults, rate}];
      if (info.delivered_frac < kSaturatedBelow || blind.delivered_frac < kSaturatedBelow)
        continue;
      if (info.latency > blind.latency * 1.02 + 1e-9) {
        std::cerr << "FAIL: wormhole fault_info latency " << info.latency
                  << " above no_info " << blind.latency << " (faults=" << faults
                  << " rate=" << rate << ")\n";
        ok = false;
      }
    }
  }

  std::cout << "\nRESULT: "
            << (ok ? "wormhole matrix sane (latency decomposes, wormhole saturates "
                     "first, limited-global information still wins under flit-level "
                     "contention)"
                   : "VIOLATIONS FOUND")
            << "\n";
  return ok ? 0 : 1;
}
