// E3 — Figure 4: recovery of a faulty node.  Node (5,5,3) of the Figure 1
// block recovers; the clean wave propagates, (3,5,3) stays disabled (two
// faults in different dimensions), (4,5,3) goes clean -> enabled ->
// disabled again, and the system stabilizes to the smaller block
// [3:4, 5:6, 3:4] whose information is redistributed.

#include <iostream>

#include "src/core/experiment_runner.h"
#include "src/core/node_process.h"
#include "src/core/scenario.h"
#include "src/sim/table_printer.h"

using namespace lgfi;

int main() {
  print_banner(std::cout, "E3 / Figure 4: recovery of (5,5,3) in the Figure 1 block");

  Config cfg = experiment_config();
  cfg.parse_string("scenario=figure1");
  Rng rng(static_cast<uint64_t>(cfg.get_int("seed")));
  auto env = ExperimentRunner(cfg).build_static(rng);
  Network& net = *env.net;

  std::cout << "  before recovery: block " << net.blocks()[0].box.to_string() << "\n";

  net.recover(figure4_recovered_node());
  const auto rounds = net.stabilize();

  const auto blocks = net.blocks();
  TablePrinter t({"quantity", "measured", "paper says"});
  t.add_row({"blocks after recovery", TablePrinter::num((long long)blocks.size()),
             "1 (Figure 4(b))"});
  if (!blocks.empty()) {
    t.add_row({"block box", blocks[0].box.to_string(),
               blocks[0].box == figure4_block_after_recovery() ? "[3:4, 5:6, 3:4]  MATCH"
                                                               : "MISMATCH!"});
  }
  t.add_row({"labeling rounds", TablePrinter::num(rounds.labeling), "small (clean wave)"});
  t.add_row({"info redistribution rounds", TablePrinter::num(rounds.boundary), "O(mesh extent)"});
  t.print(std::cout);

  print_banner(std::cout, "E3: the paper's narrated nodes after stabilization");
  TablePrinter n({"node", "paper says", "measured"});
  auto status = [&](const Coord& c) { return std::string(to_string(net.field().at(c))); };
  n.add_row({"(5,5,3)", "recovered -> enabled", status(Coord{5, 5, 3})});
  n.add_row({"(3,5,3)", "stays disabled (two faults, diff dims)", status(Coord{3, 5, 3})});
  n.add_row({"(4,5,3)", "clean -> enabled -> disabled", status(Coord{4, 5, 3})});
  n.add_row({"(5,6,3)", "clean -> enabled", status(Coord{5, 6, 3})});
  n.add_row({"(5,5,4)", "clean -> enabled", status(Coord{5, 5, 4})});
  n.print(std::cout);

  // Theorem 1 check: no stale boundary info of the old block lingers —
  // every stored box is the new one.
  long long stale = 0;
  for (NodeId id = 0; id < net.mesh().node_count(); ++id)
    for (const auto& info : net.model().info().at(id))
      if (!(info.box == figure4_block_after_recovery())) ++stale;
  std::cout << "\n  stale info entries of the old block remaining: " << stale
            << " (Theorem 1 wants 0)\n";

  const bool ok = blocks.size() == 1 && blocks[0].box == figure4_block_after_recovery() &&
                  stale == 0 && net.field().at(Coord{5, 5, 3}) == NodeStatus::kEnabled &&
                  net.field().at(Coord{3, 5, 3}) == NodeStatus::kDisabled &&
                  net.field().at(Coord{4, 5, 3}) == NodeStatus::kDisabled;
  std::cout << "  RESULT: " << (ok ? "reproduces Figure 4" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
