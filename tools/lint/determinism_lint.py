#!/usr/bin/env python3
"""Determinism & concurrency linter for the lgfi codebase (DESIGN.md section 16).

The repository's load-bearing contract is byte-identical output across thread
counts and engine variants.  The hazards that break it are invisible to the
compiler, so this linter rejects them at review time:

  unordered-iter    range-for / iterator loops over std::unordered_map or
                    std::unordered_set: the traversal order is
                    implementation-defined and hash-seed dependent, so any
                    value that flows from it into output, message order, or
                    RNG consumption breaks determinism.  Membership-only use
                    (find/count/insert/erase/clear/erase_if) is fine and not
                    flagged.
  nondet-source     ambient nondeterminism: rand()/srand(), std::random_device,
                    time(), clock(), chrono ::now().  All randomness must come
                    from the seeded, forkable lgfi::Rng; all time must be
                    simulation steps.
  pointer-order     pointer-value ordering: reinterpret_cast to (u)intptr_t,
                    std::less<T*>, std::hash<T*>.  Allocation addresses differ
                    run to run, so any order derived from them is
                    nondeterministic.
  mutex-annotation  raw std::mutex (or recursive/shared/timed variants)
                    declarations with no GUARDED_BY(name) user in the same
                    file: shared state without a compiler-checkable guard.
                    Use lgfi::Mutex + GUARDED_BY (src/core/mutex.h).

Known-good exceptions are annotated in the source with a justified reason:

    // lint: unordered-iter-ok(<reason>)
    // lint: nondet-source-ok(<reason>)
    // lint: pointer-order-ok(<reason>)
    // lint: mutex-ok(<reason>)

on the offending line or the line directly above it.  An empty reason is an
error: the annotation is the audit trail.

Usage: determinism_lint.py [--list-rules] [path ...]   (default path: src/)
Exit codes: 0 clean, 1 findings, 2 usage/IO error.

Implementation notes: the container toolchain has no libclang, so this is a
token-level scanner, not a semantic analysis.  It strips strings and comments
(preserving line numbers), tracks which identifiers in a file are declared
with an unordered container type (including `using` aliases of one), and
pattern-matches the rules above.  That makes it conservative-by-name: an
unordered container passed across files under a non-aliased name is missed,
and a same-named ordered container would false-positive (annotate it).  The
fixture tests (tools/lint/fixtures/) pin the behaviour either way.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

EXTENSIONS = {".h", ".hh", ".hpp", ".cc", ".cpp"}

RULES = {
    "unordered-iter": "iteration over std::unordered_* (order leaks into output)",
    "nondet-source": "ambient nondeterminism (rand/random_device/time/clock/::now)",
    "pointer-order": "ordering derived from pointer values",
    "mutex-annotation": "raw std::mutex member without GUARDED_BY annotation",
}

# rule id -> allowlist annotation spelled in source comments.
ALLOW_SPELLING = {
    "unordered-iter": "unordered-iter-ok",
    "nondet-source": "nondet-source-ok",
    "pointer-order": "pointer-order-ok",
    "mutex-annotation": "mutex-ok",
}

UNORDERED_TYPE_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
USING_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?r?begin\s*\(")

NONDET_PATTERNS = [
    (re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"\b(?:std\s*::\s*)?time\s*\("), "time()"),
    (re.compile(r"\b(?:std\s*::\s*)?clock\s*\("), "clock()"),
    (re.compile(r"::\s*now\s*\("), "clock ::now()"),
]

POINTER_ORDER_PATTERNS = [
    (re.compile(r"\breinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t\b"),
     "reinterpret_cast to (u)intptr_t"),
    (re.compile(r"\bstd\s*::\s*less\s*<[^<>]*\*\s*>"), "std::less over a pointer type"),
    (re.compile(r"\bstd\s*::\s*hash\s*<[^<>]*\*\s*>"), "std::hash over a pointer type"),
]

MUTEX_DECL_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_|shared_|timed_|recursive_timed_)?mutex\s+(\w+)\s*(?:;|\{\s*\})"
)
GUARDED_BY_RE = re.compile(r"\bGUARDED_BY\s*\(\s*([^)]+?)\s*\)")
LINT_COMMENT_RE = re.compile(r"lint:\s*([\w-]+)\s*\(\s*([^)]*?)\s*\)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str):
    """Returns (code_lines, comment_lines): line-aligned source with strings
    and comments blanked, and the comment text per line (for annotations)."""
    code: list[str] = []
    comments: list[str] = []
    cur_code: list[str] = []
    cur_comment: list[str] = []
    i = 0
    n = len(text)
    in_block = False
    in_line = False
    quote = ""  # '"' or "'" when inside a literal
    raw_delim = None  # raw string terminator when inside R"delim( ... )delim"
    while i < n:
        c = text[i]
        if c == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            in_line = False
            i += 1
            continue
        if in_line:
            cur_comment.append(c)
            i += 1
            continue
        if in_block:
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                in_block = False
                i += 2
            else:
                cur_comment.append(c)
                i += 1
            continue
        if raw_delim is not None:
            end = ")" + raw_delim + '"'
            if text.startswith(end, i):
                raw_delim = None
                i += len(end)
            else:
                i += 1
            continue
        if quote:
            if c == "\\":
                i += 2
            elif c == quote:
                quote = ""
                i += 1
            else:
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            in_line = True
            i += 2
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            in_block = True
            i += 2
            continue
        m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:]) if c == "R" else None
        if m:
            raw_delim = m.group(1)
            cur_code.append(" ")
            i += m.end()
            continue
        if c in "\"'":
            quote = c
            cur_code.append(c)  # keep the delimiter so regexes do not join tokens
            i += 1
            continue
        cur_code.append(c)
        i += 1
    code.append("".join(cur_code))
    comments.append("".join(cur_comment))
    return code, comments


def collect_unordered_names(code_lines: list[str]) -> set[str]:
    """Identifiers declared (member, local, or parameter) with an unordered
    container type, plus variables of `using`-aliased unordered types."""
    joined = "\n".join(code_lines)
    names: set[str] = set()
    aliases: set[str] = set()
    for m in USING_ALIAS_RE.finditer(joined):
        aliases.add(m.group(1))
    type_starts = [m for m in UNORDERED_TYPE_RE.finditer(joined)]
    for m in type_starts:
        # Walk the balanced template argument list, then take the next
        # identifier as the declared name (skipping &/* and whitespace).
        depth = 1
        j = m.end()
        while j < len(joined) and depth > 0:
            if joined[j] == "<":
                depth += 1
            elif joined[j] == ">":
                depth -= 1
            j += 1
        rest = joined[j:]
        dm = re.match(r"\s*[&*]*\s*(\w+)\s*[;,={()\[]", rest)
        if dm and dm.group(1) not in {"const", "constexpr", "static", "mutable"}:
            names.add(dm.group(1))
    for alias in aliases:
        for m in re.finditer(r"\b" + re.escape(alias) + r"\s*[&*]*\s+(\w+)\s*[;,={(]", joined):
            names.add(m.group(1))
    return names


def allowed(rule: str, comments: list[str], lineno: int) -> tuple[bool, str | None]:
    """Checks the lint annotation on `lineno` (1-based) or the line above.
    Returns (allowed, error): error is set for an annotation with no reason."""
    spelling = ALLOW_SPELLING[rule]
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(comments):
            for m in LINT_COMMENT_RE.finditer(comments[ln - 1]):
                if m.group(1) == spelling:
                    if not m.group(2).strip():
                        return False, f"lint annotation '{spelling}' has an empty reason"
                    return True, None
    return False, None


def range_for_exprs(code_lines: list[str]):
    """Yields (lineno, range_expression) for every range-based for.  The
    header may span lines; scan to the matching ')' and split on the first
    top-level ':' (ignoring '::')."""
    joined = "\n".join(code_lines)
    offsets = []  # char offset -> line number
    pos = 0
    for idx, line in enumerate(code_lines):
        offsets.append((pos, idx + 1))
        pos += len(line) + 1
    def line_of(off: int) -> int:
        lo = 1
        for start, ln in offsets:
            if start <= off:
                lo = ln
            else:
                break
        return lo
    for m in RANGE_FOR_RE.finditer(joined):
        depth = 1
        j = m.end()
        while j < len(joined) and depth > 0:
            if joined[j] == "(":
                depth += 1
            elif joined[j] == ")":
                depth -= 1
            j += 1
        header = joined[m.end():j - 1]
        if ";" in header:
            continue  # classic for loop
        k = 0
        colon = -1
        while k < len(header):
            if header[k] == ":":
                if k + 1 < len(header) and header[k + 1] == ":":
                    k += 2
                    continue
                colon = k
                break
            k += 1
        if colon < 0:
            continue
        yield line_of(m.start()), header[colon + 1:]


def lint_file(path: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        raise SystemExit(f"determinism_lint: cannot read {path}: {e}")
    code_lines, comment_lines = strip_code(text)
    findings: list[Finding] = []
    unordered = collect_unordered_names(code_lines)

    def check(rule: str, lineno: int, message: str):
        ok, err = allowed(rule, comment_lines, lineno)
        if err:
            findings.append(Finding(path, lineno, rule, err))
        elif not ok:
            findings.append(Finding(path, lineno, rule, message))

    # --- unordered-iter: range-for over a known unordered name or a braced
    # unordered temporary, and .begin() family calls on known names.
    for lineno, expr in range_for_exprs(code_lines):
        hit = None
        if UNORDERED_TYPE_RE.search(expr):
            hit = "an unordered container"
        else:
            for name in unordered:
                if re.search(r"\b" + re.escape(name) + r"\b", expr):
                    hit = f"'{name}'"
                    break
        if hit:
            check("unordered-iter", lineno,
                  f"range-for over {hit}: unordered traversal order is "
                  "implementation-defined and must not reach output "
                  "(sort first, or annotate // lint: unordered-iter-ok(reason))")
    for lineno, line in enumerate(code_lines, 1):
        for m in BEGIN_CALL_RE.finditer(line):
            if m.group(1) in unordered:
                check("unordered-iter", lineno,
                      f"iterator over unordered container '{m.group(1)}': "
                      "traversal order is implementation-defined "
                      "(sort first, or annotate // lint: unordered-iter-ok(reason))")

    # --- nondet-source
    for lineno, line in enumerate(code_lines, 1):
        for pattern, what in NONDET_PATTERNS:
            if pattern.search(line):
                check("nondet-source", lineno,
                      f"{what}: all randomness must come from the seeded lgfi::Rng "
                      "and all time from simulation steps "
                      "(or annotate // lint: nondet-source-ok(reason))")

    # --- pointer-order
    for lineno, line in enumerate(code_lines, 1):
        for pattern, what in POINTER_ORDER_PATTERNS:
            if pattern.search(line):
                check("pointer-order", lineno,
                      f"{what}: allocation addresses differ run to run "
                      "(or annotate // lint: pointer-order-ok(reason))")

    # --- mutex-annotation: every raw std::mutex declaration needs a
    # GUARDED_BY(name) user in the same file (or the lgfi::Mutex wrapper).
    guarded_names = set()
    for line in code_lines:
        for m in GUARDED_BY_RE.finditer(line):
            guard = m.group(1)
            guarded_names.add(guard.split(".")[-1].split("->")[-1].strip())
    for lineno, line in enumerate(code_lines, 1):
        for m in MUTEX_DECL_RE.finditer(line):
            if m.group(1) not in guarded_names:
                check("mutex-annotation", lineno,
                      f"std::mutex '{m.group(1)}' has no GUARDED_BY user in this file: "
                      "use lgfi::Mutex + GUARDED_BY (src/core/mutex.h) so clang "
                      "-Wthread-safety can check it "
                      "(or annotate // lint: mutex-ok(reason))")
    return findings


def iter_sources(paths: list[Path]):
    for p in paths:
        if p.is_dir():
            for child in sorted(p.rglob("*")):
                if child.suffix in EXTENSIONS and child.is_file():
                    yield child
        elif p.is_file():
            yield p
        else:
            raise SystemExit(f"determinism_lint: no such file or directory: {p}")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path, default=None,
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--list-rules", action="store_true", help="print rule ids and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}: {desc}")
        return 0
    paths = args.paths or [Path("src")]
    findings: list[Finding] = []
    count = 0
    for path in iter_sources(paths):
        count += 1
        findings.extend(lint_file(path))
    for f in findings:
        print(f, file=sys.stderr)
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s) in {count} file(s)",
              file=sys.stderr)
        return 1
    print(f"determinism_lint: {count} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
