// Lint fixture: seeded unordered-iter violations (never compiled).
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

using Table = std::unordered_map<int, std::string>;

struct Reporter {
  std::unordered_map<std::string, int> counts_;
  std::unordered_set<int> seen_;
  Table by_id_;

  int total() const {
    int sum = 0;
    for (const auto& [name, value] : counts_) sum += value;  // finding 1: range-for
    for (auto it = seen_.begin(); it != seen_.end(); ++it) sum += *it;  // finding 2: iterator
    for (const auto& [id, label] : by_id_) sum += id;  // finding 3: via using-alias
    return sum;
  }

  bool member_use_is_fine(int id) const {
    return seen_.count(id) > 0;  // membership only: not flagged
  }
};

}  // namespace fixture
