// Lint fixture: seeded mutex-annotation violation (never compiled).
#include <mutex>
#include <vector>

namespace fixture {

class Accumulator {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    values_.push_back(v);
  }

 private:
  std::mutex mu_;  // finding: no GUARDED_BY(mu_) user in this file
  std::vector<int> values_;
};

}  // namespace fixture
