// Lint fixture: seeded nondet-source violations (never compiled).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

inline int ambient_noise() {
  std::random_device rd;                                   // finding 1
  int x = static_cast<int>(rd()) + rand();                 // finding 2
  x += static_cast<int>(time(nullptr));                    // finding 3
  auto t = std::chrono::steady_clock::now();               // finding 4
  return x + static_cast<int>(t.time_since_epoch().count());
}

inline int runtime_lifetime_overtime(int overtime) {
  return overtime;  // 'time' as an identifier suffix: not flagged
}

}  // namespace fixture
