// Lint fixture: seeded pointer-order violations (never compiled).
#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace fixture {

struct Node {
  int id;
};

inline void sort_by_address(std::vector<Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(), [](const Node* a, const Node* b) {
    return reinterpret_cast<uintptr_t>(a) < reinterpret_cast<uintptr_t>(b);  // finding 1
  });
}

using AddressOrdered = std::map<Node*, int, std::less<Node*>>;  // finding 2

}  // namespace fixture
