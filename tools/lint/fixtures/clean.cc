// Lint fixture: the allowlist and the non-violating idioms (never compiled).
// Every rule has an annotated exception here, and the tree's ordinary
// patterns (membership-only unordered use, guarded mutex, std::map
// iteration) appear unannotated — this file must lint clean.
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#define GUARDED_BY(x)  // stand-in for src/core/thread_annotations.h

namespace fixture {

struct CleanUser {
  std::unordered_map<std::string, int> index_;
  std::unordered_set<int> members_;
  std::map<std::string, int> ordered_;
  std::mutex mu_;
  std::vector<int> values_ GUARDED_BY(mu_);

  int lookup(const std::string& key) const {
    const auto it = index_.find(key);  // membership: fine
    return it == index_.end() ? 0 : it->second;
  }

  bool contains(int id) const { return members_.count(id) > 0; }

  int ordered_sum() const {
    int sum = 0;
    for (const auto& [key, value] : ordered_) sum += value;  // std::map: fine
    return sum;
  }

  int annotated_scan() const {
    int sum = 0;
    // lint: unordered-iter-ok(sum is order-independent: + is commutative)
    for (const auto& [key, value] : index_) sum += value;
    return sum;
  }
};

inline int annotated_wall_clock() {
  // lint: nondet-source-ok(fixture: demonstrates the annotation spelling)
  return static_cast<int>(time(nullptr));
}

inline bool annotated_identity_compare(const int* a, const int* b) {
  // lint: pointer-order-ok(identity comparison for dedup, order never escapes)
  return reinterpret_cast<uintptr_t>(a) == reinterpret_cast<uintptr_t>(b);
}

class AnnotatedMutexHolder {
  std::mutex legacy_mu_;  // lint: mutex-ok(fixture: external lib handle, no shared members)
};

}  // namespace fixture
