#!/usr/bin/env python3
"""Tests for determinism_lint.py, run as one ctest case (`determinism_lint`).

Covers the acceptance contract from both sides: the real tree lints clean,
and every seeded violation in tools/lint/fixtures/ is caught with the right
rule id — so a silently broken linter (catching nothing) fails CI just as
loudly as a new violation in src/.
"""

import subprocess
import sys
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
LINTER = REPO / "tools" / "lint" / "determinism_lint.py"
FIXTURES = REPO / "tools" / "lint" / "fixtures"


def run_lint(*paths):
    return subprocess.run(
        [sys.executable, str(LINTER), *[str(p) for p in paths]],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


class DeterminismLintTest(unittest.TestCase):
    def assert_findings(self, fixture, rule, expected_lines):
        proc = run_lint(FIXTURES / fixture)
        self.assertEqual(proc.returncode, 1, f"{fixture} should fail the lint:\n{proc.stderr}")
        for line in expected_lines:
            needle = f"{fixture}:{line}: [{rule}]"
            self.assertIn(needle, proc.stderr, f"missing finding {needle} in:\n{proc.stderr}")
        self.assertEqual(
            proc.stderr.count(f"[{rule}]"),
            len(expected_lines),
            f"unexpected extra {rule} findings:\n{proc.stderr}",
        )

    def test_tree_is_clean(self):
        proc = run_lint(REPO / "src")
        self.assertEqual(proc.returncode, 0, f"src/ must lint clean:\n{proc.stderr}")

    def test_unordered_iteration_is_caught(self):
        # range-for over a member, an iterator loop, and a using-alias type.
        self.assert_findings("bad_unordered_iter.cc", "unordered-iter", [17, 18, 19])

    def test_nondet_sources_are_caught(self):
        self.assert_findings("bad_nondet_source.cc", "nondet-source", [10, 11, 12, 13])

    def test_unannotated_mutex_is_caught(self):
        self.assert_findings("bad_mutex.cc", "mutex-annotation", [15])

    def test_pointer_order_is_caught(self):
        self.assert_findings("bad_pointer_order.cc", "pointer-order", [15, 19])

    def test_clean_fixture_passes(self):
        proc = run_lint(FIXTURES / "clean.cc")
        self.assertEqual(proc.returncode, 0, f"clean fixture must pass:\n{proc.stderr}")

    def test_annotation_with_empty_reason_is_rejected(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            bad = Path(tmp) / "empty_reason.cc"
            bad.write_text(
                "#include <ctime>\n"
                "// lint: nondet-source-ok()\n"
                "inline long long t() { return time(nullptr); }\n"
            )
            proc = run_lint(bad)
            self.assertEqual(proc.returncode, 1)
            self.assertIn("empty reason", proc.stderr)

    def test_list_rules(self):
        proc = subprocess.run(
            [sys.executable, str(LINTER), "--list-rules"],
            capture_output=True,
            text=True,
        )
        self.assertEqual(proc.returncode, 0)
        for rule in ("unordered-iter", "nondet-source", "pointer-order", "mutex-annotation"):
            self.assertIn(rule, proc.stdout)


if __name__ == "__main__":
    unittest.main()
