#!/usr/bin/env bash
# Shared CI smoke for the traffic engine: runs both saturation benches —
# ideal (E14) and wormhole (E15) — on a tiny mesh with short windows.  Every
# CI job that smokes the traffic engine calls this script, so the override
# sets cannot drift apart between jobs (they used to be duplicated inline).
#
# Usage: scripts/traffic_smoke.sh [build-dir]   (default: build)
set -euo pipefail

build_dir="${1:-build}"

# One override set shared by both benches: 6x6 mesh, short warmup/measure.
smoke=(radix=6 warmup_steps=30 measure_steps=200 replications=4)
# Smaller meshes saturate at higher per-node rates; push the wormhole sweep
# far enough up the curve that the saturation self-check has a knee to find.
wormhole_rates=rates=0.01,0.02,0.05,0.08

# Introspection smoke: --list must print the full component catalog (every
# registry row), so the describe surface cannot rot unnoticed.  Asserts one
# known name per registry, anchored to the row position ("  <name>  ...")
# so a name merely mentioned in another row's help text cannot mask a
# dropped registration.
echo "== component catalog smoke (--list) =="
catalog="$("${build_dir}/bench_traffic_saturation" --list)"
echo "${catalog}"
for component in fault_info uniform wormhole clustered json; do
  if ! grep -Eq "^  ${component}  +" <<< "${catalog}"; then
    echo "FAIL: --list catalog is missing the '${component}' row" >&2
    exit 1
  fi
done

echo "== traffic smoke: ideal switching (bench_traffic_saturation) =="
"${build_dir}/bench_traffic_saturation" "${smoke[@]}"

echo "== traffic smoke: wormhole switching (bench_wormhole_saturation) =="
"${build_dir}/bench_wormhole_saturation" "${smoke[@]}" "${wormhole_rates}"
