#!/usr/bin/env bash
# Shared CI smoke for the traffic engine: runs both saturation benches —
# ideal (E14) and wormhole (E15) — on a tiny mesh with short windows, plus a
# campaign smoke through the unified `sweep` CLI.  Every CI job that smokes
# the traffic engine calls this script, so the override sets cannot drift
# apart between jobs (they used to be duplicated inline).
#
# Usage: scripts/traffic_smoke.sh [build-dir]   (default: build)
set -euo pipefail

build_dir="${1:-build}"

# One override set shared by both benches: 6x6 mesh, short warmup/measure.
smoke=(radix=6 warmup_steps=30 measure_steps=200 replications=4)
# Smaller meshes saturate at higher per-node rates; push the wormhole sweep
# far enough up the curve that the saturation self-check has a knee to find.
wormhole_rates=rates=0.01,0.02,0.05,0.08

# Introspection smoke: --list must print the full component catalog (every
# registry row), so the describe surface cannot rot unnoticed.  Asserts one
# known name per registry, anchored to the row position ("  <name>  ...")
# so a name merely mentioned in another row's help text cannot mask a
# dropped registration.  Run for the bench *and* the unified sweep CLI —
# they reach the catalog through different binaries.
check_catalog() {
  local binary="$1"
  echo "== component catalog smoke (${binary} --list) =="
  local catalog
  catalog="$("${build_dir}/${binary}" --list)"
  echo "${catalog}"
  for component in torus fault_info uniform closed_loop wormhole clustered json \
      lifecycle csv_ci; do
    if ! grep -Eq "^  ${component}  +" <<< "${catalog}"; then
      echo "FAIL: ${binary} --list catalog is missing the '${component}' row" >&2
      exit 1
    fi
  done
  if ! grep -q '^topologies (topology=)' <<< "${catalog}"; then
    echo "FAIL: ${binary} --list catalog is missing the topology axis section" >&2
    exit 1
  fi
  if ! grep -q '^injection processes (injection=)' <<< "${catalog}"; then
    echo "FAIL: ${binary} --list catalog is missing the injection axis section" >&2
    exit 1
  fi
}
check_catalog bench_traffic_saturation
check_catalog sweep

# Campaign smoke: a 2-axis sweep from one `sweep` invocation must produce
# exactly one CSV header (swept keys leading) and one row per grid point.
echo "== campaign smoke (sweep, 2-axis grid -> csv) =="
campaign_csv="$("${build_dir}/sweep" 'router=[no_info,fault_info]' \
  'injection_rate=[0.02,0.05,0.1]' traffic=uniform radix=6 warmup_steps=20 \
  measure_steps=100 replications=2 routes=0 faults=0 report=csv)"
echo "${campaign_csv}"
headers=$(grep -c '^router,injection_rate,' <<< "${campaign_csv}" || true)
rows=$(grep -cE '^(no_info|fault_info),0\.' <<< "${campaign_csv}" || true)
if [ "${headers}" -ne 1 ] || [ "${rows}" -ne 6 ]; then
  echo "FAIL: campaign csv expected 1 header + 6 rows, got ${headers} + ${rows}" >&2
  exit 1
fi

# Topology-axis smoke: the same traffic experiment swept across the mesh and
# torus substrates from one invocation — exercises wraparound routing, the
# vacuous-outer-surface fault placement, and the campaign grammar's sixth axis.
echo "== topology smoke (sweep, topology=[mesh,torus] -> csv) =="
topology_csv="$("${build_dir}/sweep" 'topology=[mesh,torus]' traffic=uniform \
  radix=6 warmup_steps=20 measure_steps=100 replications=2 routes=0 faults=4 \
  report=csv)"
echo "${topology_csv}"
topo_rows=$(grep -cE '^(mesh|torus),' <<< "${topology_csv}" || true)
if [ "${topo_rows}" -ne 2 ]; then
  echo "FAIL: topology campaign csv expected 2 rows, got ${topo_rows}" >&2
  exit 1
fi

# Closed-loop smoke: one sweep over the injection axis — the open-loop point
# must run unchanged next to the request-reply point from the same grid.
echo "== closed-loop smoke (sweep, injection=[bernoulli,closed_loop] -> csv) =="
# (No window= override: a per-process knob set explicitly would be rejected
# at the bernoulli grid point — eager validation is per point, by design.)
closed_csv="$("${build_dir}/sweep" 'injection=[bernoulli,closed_loop]' \
  traffic=uniform injection_rate=0.1 radix=6 warmup_steps=20 measure_steps=100 \
  replications=2 routes=0 faults=0 report=csv)"
echo "${closed_csv}"
closed_rows=$(grep -cE '^(bernoulli|closed_loop),' <<< "${closed_csv}" || true)
if [ "${closed_rows}" -ne 2 ]; then
  echo "FAIL: injection campaign csv expected 2 rows, got ${closed_rows}" >&2
  exit 1
fi

# Trace round-trip smoke: record a run, replay it through injection=trace
# while re-recording, and require the two trace files to be byte-identical —
# the replayed injection stream is exactly the recorded one.
echo "== trace record/replay smoke (sweep, injection=trace) =="
trace_dir="$(mktemp -d)"
trap 'rm -rf "${trace_dir}"' EXIT
"${build_dir}/sweep" traffic=uniform injection_rate=0.1 radix=6 warmup_steps=20 \
  measure_steps=100 replications=1 routes=0 faults=3 seed=7 \
  "trace_record=${trace_dir}/a.trace" report=json > "${trace_dir}/a.json"
"${build_dir}/sweep" traffic=uniform injection=trace "trace_file=${trace_dir}/a.trace" \
  radix=6 warmup_steps=20 measure_steps=100 replications=1 routes=0 faults=3 seed=7 \
  "trace_record=${trace_dir}/b.trace" report=json > "${trace_dir}/b.json"
if ! cmp -s "${trace_dir}/a.trace" "${trace_dir}/b.trace"; then
  echo "FAIL: replayed trace is not byte-identical to the recorded trace" >&2
  exit 1
fi
# Every metric except offered_load must survive the round trip (offers
# rejected at injection are not recorded, so on replay offered == injected).
if ! diff <(grep -v offered_load "${trace_dir}/a.json") \
          <(grep -v offered_load "${trace_dir}/b.json"); then
  echo "FAIL: trace replay metrics diverge from the recorded run" >&2
  exit 1
fi
echo "trace round trip: byte-identical trace, identical metrics"

echo "== traffic smoke: ideal switching (bench_traffic_saturation) =="
"${build_dir}/bench_traffic_saturation" "${smoke[@]}"

echo "== traffic smoke: wormhole switching (bench_wormhole_saturation) =="
"${build_dir}/bench_wormhole_saturation" "${smoke[@]}" "${wormhole_rates}"

echo "== traffic smoke: closed loop vs open loop (bench_closed_loop_saturation) =="
"${build_dir}/bench_closed_loop_saturation" radix=6 warmup_steps=30 \
  measure_steps=200 replications=2

# Lifecycle campaign smoke: a fault arrival x repair grid through the
# unified CLI with the CI reporter — every metric column must carry a paired
# _ci95 column, and no cell may hold a literal nan.
echo "== lifecycle smoke (sweep, fault_arrival_rate x repair_rate -> csv_ci) =="
# (No transient_frac here: the grid includes repair_rate=0, and a transient
# with no repair process is rejected by eager per-point validation.)
lifecycle_csv="$("${build_dir}/sweep" 'fault_arrival_rate=[0.05,0.2]' \
  'repair_rate=[0,0.2]' fault_model=lifecycle traffic=uniform \
  radix=6 warmup_steps=20 measure_steps=150 replications=2 routes=0 report=csv_ci)"
echo "${lifecycle_csv}"
lifecycle_rows=$(grep -cE '^0\.(05|2),' <<< "${lifecycle_csv}" || true)
if [ "${lifecycle_rows}" -ne 4 ]; then
  echo "FAIL: lifecycle campaign csv_ci expected 4 rows, got ${lifecycle_rows}" >&2
  exit 1
fi
if ! grep -q 'latency,latency_ci95' <<< "${lifecycle_csv}"; then
  echo "FAIL: csv_ci header is missing the paired _ci95 column" >&2
  exit 1
fi
if grep -Eq '(^|,)(nan|inf)(,|$)' <<< "${lifecycle_csv}"; then
  echo "FAIL: lifecycle campaign csv_ci contains a literal nan/inf cell" >&2
  exit 1
fi

echo "== reliability smoke (bench_reliability, E17) =="
"${build_dir}/bench_reliability" radix=6 measure_steps=150 replications=2
