#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against the checked-in baseline.

Usage:
    scripts/check_perf_regression.py BENCH_baseline.json BENCH_pr.json [--threshold 25]

Fails (exit 1) when any benchmark present in both files is more than
--threshold percent slower than the baseline *after normalizing out the
machine-speed factor*: the geometric mean of all per-benchmark time ratios
is taken as "how much slower/faster this machine is overall" and each
benchmark is compared against that, so a baseline recorded on different
hardware (the checked-in one, or a stale one after a runner-image change)
does not produce phantom regressions — only benchmarks that slowed down
*relative to the rest of the suite* trip the gate.  Pass --absolute to
compare raw times instead (meaningful only when baseline and current ran
on identical hardware).

The trade-off: a perfectly uniform slowdown of every benchmark is absorbed
into the machine factor.  That is the cost of a cross-machine tripwire;
refreshing the baseline from the BENCH_pr artifact of a green CI run keeps
the factor near 1 so the window stays small.

Benchmarks that exist on only one side are reported but do not fail the
check — adding or retiring a benchmark is not a regression.
"""

import argparse
import json
import math
import sys

_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """benchmark name -> real_time in nanoseconds."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    times = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of --benchmark_repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        # A benchmark that failed at runtime (error_occurred) has no timing
        # row; warn instead of crashing the job on the missing key.
        if bench.get("error_occurred") or "real_time" not in bench:
            print(f"NOTE: skipping benchmark without timing data: "
                  f"{bench.get('name', '<unnamed>')}")
            continue
        unit = bench.get("time_unit", "ns")
        times[bench["name"]] = bench["real_time"] * _TO_NS.get(unit, 1.0)
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="maximum tolerated slowdown in percent (default 25)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw times (requires identical hardware)")
    args = parser.parse_args()

    baseline = load_times(args.baseline)
    current = load_times(args.current)

    for name in sorted(set(baseline) - set(current)):
        print(f"NOTE: baseline-only benchmark (retired?): {name}")
    for name in sorted(set(current) - set(baseline)):
        print(f"NOTE: new benchmark without baseline: {name}")

    shared = sorted(n for n in set(baseline) & set(current) if baseline[n] > 0)
    if not shared:
        print("ERROR: no benchmarks in common between baseline and current run")
        return 1

    ratios = {n: current[n] / baseline[n] for n in shared}
    machine = 1.0
    if not args.absolute:
        machine = math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))
        print(f"machine-speed factor (geomean of ratios): {machine:.3f}x "
              f"— per-benchmark deltas below are relative to it\n")

    regressions = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'rel delta':>9}")
    for name in shared:
        delta = (ratios[name] / machine - 1.0) * 100.0
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {baseline[name]:>10.0f}ns  {current[name]:>10.0f}ns  "
              f"{delta:>+8.1f}%{flag}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}% vs {args.baseline}:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0f}% "
          f"({len(shared)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
